package main

// Graph-store benchmark recording: `benchtables -store` measures the
// persistent-store pipeline at the million-node tier — edge-list
// ingest, store encode+write, validated and trusted load, the
// regenerate-from-scratch baseline the load replaces, time to first
// query on a loaded graph, and an 8-session concurrent sweep through
// the colorserve engine — and records BENCH_store.json. The rounds/
// messages/words columns carry shape instead of protocol cost: load
// rows put the file size in words, the serve row puts the session
// count in rounds.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	sb "smallbandwidth"
	"smallbandwidth/internal/enginebench"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/serve"
	"smallbandwidth/internal/store"
)

func storeBench(quick bool) []EngineWorkload {
	n := 1000000
	if quick {
		n = 100000
	}
	fail := func(what string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "store %s run failed: %v\n", what, err)
			os.Exit(1)
		}
	}
	dir, err := os.MkdirTemp("", "benchstore-*")
	fail("tmpdir", err)
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g.store")

	const kind = "chunglu"
	var out []EngineWorkload

	// The graph under test, and the regeneration baseline the load path
	// replaces (the acceptance ratio below is load vs this rebuild).
	rebuild, g := measureBuild(workloadName("store-rebuild", kind, n), func() *sb.Graph {
		return enginebench.ScaleGraph(kind, n)
	})
	out = append(out, rebuild)

	// Ingest: the graph rendered as edge-list text (the operator's input
	// format), parsed, deduplicated, relabeled, and built.
	var sbld strings.Builder
	sbld.Grow(16 * g.M())
	g.Edges(func(u, v int) {
		sbld.WriteString(strconv.Itoa(u))
		sbld.WriteByte(' ')
		sbld.WriteString(strconv.Itoa(v))
		sbld.WriteByte('\n')
	})
	text := sbld.String()
	var ingested *graph.Graph
	out = append(out, measure(workloadName("store-ingest", kind, n), g.N(), g.M(), func() (int, int64, int64) {
		var stats *store.IngestStats
		var err error
		ingested, stats, err = store.Ingest(strings.NewReader(text))
		fail("ingest", err)
		return 0, int64(stats.Lines), int64(len(text))
	}))
	// Ingest relabels in first-appearance order and drops vertices that
	// never occur in the text (ChungLu has isolated ones), so the graphs
	// are isomorphic rather than equal; every edge must survive.
	if ingested.M() != g.M() || ingested.N() > g.N() {
		fmt.Fprintf(os.Stderr, "store ingest kept n=%d m=%d of a n=%d m=%d graph\n",
			ingested.N(), ingested.M(), g.N(), g.M())
		os.Exit(1)
	}
	ingested = nil

	out = append(out, measure(workloadName("store-encode", kind, n), g.N(), g.M(), func() (int, int64, int64) {
		fail("write", store.Write(path, g))
		st, err := os.Stat(path)
		fail("stat", err)
		return 0, 0, st.Size()
	}))

	var loaded *graph.Graph
	for _, mode := range []struct {
		name string
		load func(string) (*graph.Graph, *store.Info, error)
	}{{"load", store.Load}, {"loadtrust", store.LoadTrusted}} {
		w := measure(workloadName("store-"+mode.name, kind, n), g.N(), g.M(), func() (int, int64, int64) {
			lg, info, err := mode.load(path)
			fail(mode.name, err)
			loaded = lg
			return 0, 0, int64(info.Bytes)
		})
		out = append(out, w)
		if !loaded.Equal(g) {
			fmt.Fprintf(os.Stderr, "store %s returned a different graph\n", mode.name)
			os.Exit(1)
		}
		ratio := float64(rebuild.WallNS) / float64(w.WallNS)
		fmt.Printf("store-%s speedup over rebuild: %.1fx\n", mode.name, ratio)
	}

	// First query on a freshly loaded graph: list build + greedy + full
	// verification — the end-to-end cost of "store file to first answer".
	out = append(out, measure(workloadName("store-firstquery", kind, n), g.N(), g.M(), func() (int, int64, int64) {
		lg, _, err := store.LoadTrusted(path)
		fail("firstquery load", err)
		inst := graph.DeltaPlusOneInstance(lg)
		colors := inst.Greedy()
		fail("firstquery verify", inst.VerifyColoring(colors))
		distinct, _ := serve.ColorsSummary(colors)
		return 0, int64(distinct), 0
	}))

	// 8 concurrent sessions through the daemon engine, every transcript
	// pinned against the single-session reference — the concurrency half
	// of the acceptance criteria.
	srv := serve.New(serve.Options{})
	fail("serve add", srv.AddGraph("g", g))
	script := "stats g\ncolor g greedy\nquit\n"
	var ref strings.Builder
	fail("serve reference", srv.HandleSession(strings.NewReader(script), &ref))
	const sessions = 8
	out = append(out, measure(workloadName(fmt.Sprintf("store-serve%d", sessions), kind, n), g.N(), g.M(), func() (int, int64, int64) {
		fail("serve sweep", serveBitIdentity(srv, sessions, script, ref.String()))
		return sessions, 0, 0
	}))
	return out
}

// serveBitIdentity runs `sessions` concurrent scripted sessions through
// the serve engine and checks every transcript against want; the first
// divergence or session error is returned.
func serveBitIdentity(srv *serve.Server, sessions int, script, want string) error {
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out strings.Builder
			if err := srv.HandleSession(strings.NewReader(script), &out); err != nil {
				errs <- err
				return
			}
			if out.String() != want {
				errs <- fmt.Errorf("session transcript diverged:\n got %q\nwant %q", out.String(), want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	return <-errs
}
