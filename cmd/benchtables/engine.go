package main

// Engine benchmark recording: `benchtables -engine` measures the CONGEST
// simulator itself (not a theorem) on large graphs and merges the
// results into BENCH_congest.json, keyed by -label, so the engine's perf
// trajectory is tracked across PRs. The workloads (color, barrier,
// flood) are defined in internal/enginebench, shared with the
// BenchmarkEngine* benchmarks in bench_test.go.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"smallbandwidth/internal/enginebench"
)

// EngineWorkload is one measured engine run.
type EngineWorkload struct {
	Name       string `json:"name"`
	N          int    `json:"n"`
	M          int    `json:"m"`
	Rounds     int    `json:"rounds"`
	Messages   int64  `json:"messages"`
	Words      int64  `json:"words"`
	WallNS     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
}

// EngineRecord is one engine's full measurement set.
type EngineRecord struct {
	GoMaxProcs int              `json:"gomaxprocs"`
	Source     string           `json:"source"`
	Workloads  []EngineWorkload `json:"workloads"`
}

// BenchFile is the BENCH_congest.json schema: a label→record map so
// successive PRs append instead of overwrite.
type BenchFile struct {
	Schema  string                  `json:"schema"`
	Engines map[string]EngineRecord `json:"engines"`
}

func measure(name string, n, m int, run func() (rounds int, messages, words int64)) EngineWorkload {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	rounds, messages, words := run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	w := EngineWorkload{
		Name: name, N: n, M: m,
		Rounds: rounds, Messages: messages, Words: words,
		WallNS:     wall.Nanoseconds(),
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Mallocs:    after.Mallocs - before.Mallocs,
	}
	fmt.Printf("%-28s n=%-7d m=%-8d rounds=%-6d msgs=%-10d wall=%-12s alloc=%dMB mallocs=%d\n",
		name, n, m, rounds, messages, wall.Round(time.Millisecond),
		w.AllocBytes/(1<<20), w.Mallocs)
	return w
}

func engineBench(quick bool) []EngineWorkload {
	sizes := []int{10000, 100000}
	if quick {
		sizes = []int{2000, 10000}
	}
	fail := func(what string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "engine %s run failed: %v\n", what, err)
			os.Exit(1)
		}
	}
	var out []EngineWorkload
	for _, n := range sizes {
		for _, kind := range enginebench.Kinds {
			g := enginebench.Graph(kind, n)
			out = append(out, measure(fmt.Sprintf("color/%s", kind), g.N(), g.M(), func() (int, int64, int64) {
				res, err := enginebench.Color(g)
				fail("color", err)
				return res.Stats.Rounds, res.Stats.Messages, res.Stats.Words
			}))
		}
		g := enginebench.Graph("regular4", n)
		out = append(out, measure("barrier/regular4", g.N(), g.M(), func() (int, int64, int64) {
			st, err := enginebench.Barrier(g)
			fail("barrier", err)
			return st.Rounds, st.Messages, st.Words
		}))
		out = append(out, measure("flood/regular4", g.N(), g.M(), func() (int, int64, int64) {
			st, err := enginebench.Flood(g)
			fail("flood", err)
			return st.Rounds, st.Messages, st.Words
		}))
	}
	return out
}

// recordEngine merges this run into path under label and writes it back.
func recordEngine(path, label string, quick bool) error {
	file := BenchFile{Schema: "smallbandwidth/bench-congest/v1", Engines: map[string]EngineRecord{}}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("existing %s is not valid JSON (%v); refusing to overwrite", path, err)
		}
		if file.Engines == nil {
			file.Engines = map[string]EngineRecord{}
		}
	}
	file.Engines[label] = EngineRecord{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Source:     "cmd/benchtables -engine",
		Workloads:  engineBench(quick),
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
