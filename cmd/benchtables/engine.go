package main

// Engine benchmark recording: `benchtables -engine` measures the CONGEST
// simulator itself (not a theorem) on large graphs and merges the
// results into BENCH_congest.json, keyed by -label, so the engine's perf
// trajectory is tracked across PRs; `-clique` and `-mpc` do the same for
// the CONGESTED CLIQUE and MPC simulators (BENCH_clique.json,
// BENCH_mpc.json). The workloads are defined in internal/enginebench,
// shared with the BenchmarkEngine* benchmarks in bench_test.go.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	sb "smallbandwidth"
	"smallbandwidth/internal/enginebench"
	"smallbandwidth/internal/store"
)

// EngineWorkload is one measured engine run.
type EngineWorkload struct {
	Name       string `json:"name"`
	N          int    `json:"n"`
	M          int    `json:"m"`
	Rounds     int    `json:"rounds"`
	Messages   int64  `json:"messages"`
	Words      int64  `json:"words"`
	WallNS     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
}

// EngineRecord is one engine's full measurement set. GoMaxProcs is the
// parallelism the sweep ran with and NumCPU the parallelism the host
// offered, so a record pins both the single-core wall time
// (gomaxprocs = 1) and the multi-core scaling (gomaxprocs = num_cpu) —
// `-procs both` emits the two records in one invocation.
type EngineRecord struct {
	GoMaxProcs int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu,omitempty"`
	Source     string           `json:"source"`
	Workloads  []EngineWorkload `json:"workloads"`
}

// BenchFile is the BENCH_congest.json schema (v2 adds num_cpu and the
// `label@p1`/`label@pN` record pairs of -procs both; v1 records parse
// unchanged): a label→record map so successive PRs append instead of
// overwrite.
type BenchFile struct {
	Schema  string                  `json:"schema"`
	Engines map[string]EngineRecord `json:"engines"`
}

// workloadName formats a sized workload name as "group/kind-n". Records
// written before the separator (e.g. "scale-build/gnp41000000") glued
// kind and size into one unparseable token; new records always carry the
// dash, and parseWorkloadName reads both generations.
func workloadName(group, kind string, n int) string {
	return fmt.Sprintf("%s/%s-%d", group, kind, n)
}

// digitKinds are the workload kinds whose own names end in a digit;
// the legacy glued form cannot be split by trailing digits alone for
// these ("gnp41000000" is gnp4 at n = 10⁶, not gnp at 4.1·10⁷).
var digitKinds = []string{"gnp4", "regular4", "torus2d"}

// parseWorkloadName splits a workload name into its group, kind, and
// size, tolerating both the dashed form new records carry
// ("scale-color/gnp4-1000000") and the legacy glued form
// ("scale-color/gnp41000000"): glued names resolve against the known
// digit-suffixed kinds first, then split at the longest trailing digit
// run. Names without a size (engine-mode workloads like
// "color/gnp-sparse") return ok = false.
func parseWorkloadName(name string) (group, kind string, n int, ok bool) {
	slash := strings.IndexByte(name, '/')
	if slash < 0 {
		return "", "", 0, false
	}
	group, rest := name[:slash], name[slash+1:]
	if kind, num, found := strings.Cut(rest, "-"); found {
		v, err := strconv.Atoi(num)
		if err != nil || kind == "" {
			return "", "", 0, false
		}
		return group, kind, v, true
	}
	for _, k := range digitKinds {
		if num, found := strings.CutPrefix(rest, k); found && num != "" {
			if v, err := strconv.Atoi(num); err == nil {
				return group, k, v, true
			}
		}
	}
	end := len(rest)
	for end > 0 && rest[end-1] >= '0' && rest[end-1] <= '9' {
		end--
	}
	if end == len(rest) || end == 0 {
		return "", "", 0, false
	}
	v, err := strconv.Atoi(rest[end:])
	if err != nil {
		return "", "", 0, false
	}
	return group, rest[:end], v, true
}

func measure(name string, n, m int, run func() (rounds int, messages, words int64)) EngineWorkload {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	rounds, messages, words := run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	w := EngineWorkload{
		Name: name, N: n, M: m,
		Rounds: rounds, Messages: messages, Words: words,
		WallNS:     wall.Nanoseconds(),
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Mallocs:    after.Mallocs - before.Mallocs,
	}
	printWorkload(w)
	return w
}

func printWorkload(w EngineWorkload) {
	fmt.Printf("%-28s n=%-7d m=%-8d rounds=%-6d msgs=%-10d wall=%-12s alloc=%dMB mallocs=%d\n",
		w.Name, w.N, w.M, w.Rounds, w.Messages, time.Duration(w.WallNS).Round(time.Millisecond),
		w.AllocBytes/(1<<20), w.Mallocs)
}

func engineBench(quick bool) []EngineWorkload {
	sizes := []int{10000, 100000}
	if quick {
		sizes = []int{2000, 10000}
	}
	fail := func(what string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "engine %s run failed: %v\n", what, err)
			os.Exit(1)
		}
	}
	var out []EngineWorkload
	for _, n := range sizes {
		for _, kind := range enginebench.Kinds {
			g := enginebench.Graph(kind, n)
			out = append(out, measure(fmt.Sprintf("color/%s", kind), g.N(), g.M(), func() (int, int64, int64) {
				res, err := enginebench.Color(g)
				fail("color", err)
				return res.Stats.Rounds, res.Stats.Messages, res.Stats.Words
			}))
		}
		g := enginebench.Graph("regular4", n)
		out = append(out, measure("barrier/regular4", g.N(), g.M(), func() (int, int64, int64) {
			st, err := enginebench.Barrier(g)
			fail("barrier", err)
			return st.Rounds, st.Messages, st.Words
		}))
		out = append(out, measure("flood/regular4", g.N(), g.M(), func() (int, int64, int64) {
			st, err := enginebench.Flood(g)
			fail("flood", err)
			return st.Rounds, st.Messages, st.Words
		}))
	}
	return out
}

// cliqueBench measures the CONGESTED CLIQUE simulator: the all-to-all
// flood isolates Exchange delivery, the color runs are Theorem 1.3 end
// to end.
func cliqueBench(quick bool) []EngineWorkload {
	floodSizes := []int{512, 1536}
	colorConfs := []struct{ n, d int }{{48, 8}, {64, 8}}
	if quick {
		floodSizes = []int{256, 512}
		colorConfs = []struct{ n, d int }{{32, 6}}
	}
	var out []EngineWorkload
	for _, n := range floodSizes {
		out = append(out, measure(fmt.Sprintf("clique-flood/%d", n), n, n*(n-1)/2, func() (int, int64, int64) {
			st, err := enginebench.CliqueFlood(n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clique flood run failed: %v\n", err)
				os.Exit(1)
			}
			return st.Rounds, st.Messages, st.Words
		}))
	}
	for _, c := range colorConfs {
		out = append(out, measure(workloadName("clique-color", "regular", c.d), c.n, c.n*c.d/2, func() (int, int64, int64) {
			res, err := enginebench.CliqueColor(c.n, c.d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clique color run failed: %v\n", err)
				os.Exit(1)
			}
			return res.Stats.Rounds, res.Stats.Messages, res.Stats.Words
		}))
	}
	return out
}

// decompBench measures the Corollary 1.2 pipeline: for each
// high-diameter topology it runs the seed-equivalent sequential path
// (decomp-seq/*: one engine spin-up per cluster per component, as the
// seed scheduled it) next to the batched path (decomp-batched/*: all
// clusters of a color class in one disjoint-union engine run with
// identical-component memoization), recording ChargedRounds as rounds
// and the summed class traffic as messages/words — both pipelines
// charge the same model cost, so the wall-clock column is the
// comparison. decomp-build/* is the frontier-driven decomposition
// builder alone (rounds = construction ChargedRound, messages = cluster
// count, words = β).
func decompBench(quick bool) []EngineWorkload {
	confs := []struct {
		kind string
		n    int
	}{{"cycle", 4096}, {"grid", 4096}, {"cycle", 16384}}
	buildN := 100000
	if quick {
		confs = []struct {
			kind string
			n    int
		}{{"cycle", 1024}, {"grid", 1024}, {"cycle", 4096}}
		buildN = 20000
	}
	fail := func(what string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "decomp %s run failed: %v\n", what, err)
			os.Exit(1)
		}
	}
	var out []EngineWorkload
	for _, c := range confs {
		g := enginebench.DecompGraph(c.kind, c.n)
		for _, batched := range []bool{false, true} {
			mode := "seq"
			if batched {
				mode = "batched"
			}
			name := fmt.Sprintf("decomp-%s/%s%d", mode, c.kind, g.N())
			out = append(out, measure(name, g.N(), g.M(), func() (int, int64, int64) {
				res, err := enginebench.DecompColor(g, batched)
				fail(name, err)
				return res.ChargedRounds, res.Messages, res.Words
			}))
		}
	}
	g := enginebench.DecompGraph("cycle", buildN)
	out = append(out, measure(workloadName("decomp-build", "cycle", buildN), g.N(), g.M(), func() (int, int64, int64) {
		d, err := enginebench.DecompBuild(g)
		fail("build", err)
		return d.ChargedRound, int64(len(d.Clusters)), int64(d.Beta)
	}))
	return out
}

// measureBuild is measure for graph construction: node and edge counts
// are only known once the build ran, so the row (and its progress
// line) is assembled from the built graph afterwards — rounds 0,
// messages = M, words = Δ; the build has no protocol cost, so those
// columns carry the graph's shape instead.
func measureBuild(name string, build func() *sb.Graph) (EngineWorkload, *sb.Graph) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	g := build()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	w := EngineWorkload{
		Name: name, N: g.N(), M: g.M(),
		Messages: int64(g.M()), Words: int64(g.MaxDegree()),
		WallNS:     wall.Nanoseconds(),
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Mallocs:    after.Mallocs - before.Mallocs,
	}
	printWorkload(w)
	return w, g
}

// scaleBench is the million-node scenario tier (BENCH_scale.json): CSR
// construction of all three ScaleKinds topologies at n = 10⁶, one full
// engine round on the power-law graph (the substrate smoke workload),
// one Lemma 2.1 ColorCONGEST iteration on the bounded-degree kinds, and
// the full Corollary 1.2 ColorDecomposed pipeline on the grid. The
// ChungLu kind records construction + engine round only: its power-law
// Δ ≈ n^(2/3) inflates the derandomization parameters (seed length and
// phase count grow with log Δ · log C), which measures parameter blowup
// rather than substrate scale — docs/PERF.md discusses the choice.
func scaleBench(quick bool) []EngineWorkload {
	n := 1000000
	if quick {
		n = 100000
	}
	fail := func(what string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "scale %s run failed: %v\n", what, err)
			os.Exit(1)
		}
	}
	var out []EngineWorkload
	graphs := map[string]*sb.Graph{}
	for _, kind := range enginebench.ScaleKinds {
		w, g := measureBuild(workloadName("scale-build", kind, n), func() *sb.Graph {
			return enginebench.ScaleGraph(kind, n)
		})
		out = append(out, w)
		graphs[kind] = g
	}
	out = append(out, measure(workloadName("scale-round", "chunglu", n),
		graphs["chunglu"].N(), graphs["chunglu"].M(), func() (int, int64, int64) {
			st, err := enginebench.ScaleRound(graphs["chunglu"])
			fail("round", err)
			return st.Rounds, st.Messages, st.Words
		}))
	graphs["chunglu"] = nil
	for _, kind := range []string{"gnp4", "grid"} {
		g := graphs[kind]
		out = append(out, measure(workloadName("scale-color", kind, n), g.N(), g.M(), func() (int, int64, int64) {
			res, err := enginebench.Color(g)
			fail("color", err)
			return res.Stats.Rounds, res.Stats.Messages, res.Stats.Words
		}))
	}
	g := graphs["grid"]
	out = append(out, measure(workloadName("scale-decomp", "grid", n), g.N(), g.M(), func() (int, int64, int64) {
		res, err := enginebench.DecompColor(g, true)
		fail("decomp", err)
		return res.ChargedRounds, res.Messages, res.Words
	}))
	return out
}

// mpcBench measures the MPC simulator: the sort workloads isolate the
// Lemma 5.1 record-moving tools, the color runs are Theorem 1.4 end to
// end.
func mpcBench(quick bool) []EngineWorkload {
	sortSizes := []int{1000000, 4000000}
	colorConfs := []struct{ n, d int }{{96, 4}, {128, 4}}
	if quick {
		sortSizes = []int{100000, 400000}
		colorConfs = []struct{ n, d int }{{48, 4}}
	}
	var out []EngineWorkload
	for _, n := range sortSizes {
		out = append(out, measure(fmt.Sprintf("mpc-sort/%d", n), n, enginebench.MPCSortMachines, func() (int, int64, int64) {
			rounds, err := enginebench.MPCSortRanks(n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpc sort run failed: %v\n", err)
				os.Exit(1)
			}
			return rounds, int64(n), int64(3 * n)
		}))
	}
	for _, c := range colorConfs {
		out = append(out, measure(workloadName("mpc-color", "regular", c.d), c.n, c.n*c.d/2, func() (int, int64, int64) {
			res, err := enginebench.MPCColor(c.n, c.d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpc color run failed: %v\n", err)
				os.Exit(1)
			}
			return res.Rounds, int64(res.HighWaterMemory), int64(res.HighWaterIO)
		}))
	}
	return out
}

// recordBench merges one workload sweep into path under label and writes
// the file back.
func recordBench(path, label, schema, source string, workloads []EngineWorkload) error {
	file := BenchFile{Schema: schema, Engines: map[string]EngineRecord{}}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("existing %s is not valid JSON (%v); refusing to overwrite", path, err)
		}
		file.Schema = schema
		if file.Engines == nil {
			file.Engines = map[string]EngineRecord{}
		}
	}
	file.Engines[label] = EngineRecord{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Source:     source,
		Workloads:  workloads,
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	// BENCH_*.json records are merged into (not regenerated), so a torn
	// write would destroy history: go through the durable rename path.
	return store.WriteFileAtomic(path, append(data, '\n'))
}
