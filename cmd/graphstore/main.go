// graphstore ingests plain-text edge lists into the versioned graph
// store consumed by colorserve and the library's store.Load, and
// inspects store files.
//
//	graphstore ingest -o web.store web.edges   # edge list → store
//	graphstore info web.store                  # header fields, no validation
//	graphstore verify web.store                # full CSR validation
//
// The ingest grammar (see internal/store.Ingest): '#', '%', '//'
// comment lines; blank lines; endpoints separated by spaces, tabs,
// commas, or semicolons; extra columns (weights, timestamps) ignored;
// arbitrary uint64 node IDs relabeled densely in order of first
// appearance; duplicate edges (either orientation) and self-loops
// dropped and counted. Malformed input aborts with the 1-based line
// number and exit status 1 — never a panic.
package main

import (
	"flag"
	"fmt"
	"os"

	"smallbandwidth/internal/store"
)

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  graphstore ingest -o OUT.store INPUT.edges
  graphstore info   FILE.store
  graphstore verify FILE.store
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ingest":
		runIngest(os.Args[2:])
	case "info":
		runInfo(os.Args[2:])
	case "verify":
		runVerify(os.Args[2:])
	default:
		usage()
	}
}

func runIngest(args []string) {
	fs := flag.NewFlagSet("graphstore ingest", flag.ExitOnError)
	out := fs.String("o", "", "output store file (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 1 {
		usage()
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	defer in.Close()
	g, stats, err := store.Ingest(in)
	if err != nil {
		fail(fmt.Errorf("%s: %w", fs.Arg(0), err))
	}
	if err := store.Write(*out, g); err != nil {
		fail(err)
	}
	info, err := store.ReadInfo(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("ingested %s: lines=%d comments=%d edges=%d duplicates=%d selfloops=%d nodes=%d\n",
		fs.Arg(0), stats.Lines, stats.Comments, stats.Edges, stats.Duplicates, stats.SelfLoops, stats.Nodes)
	fmt.Printf("wrote %s: n=%d m=%d maxdeg=%d bytes=%d\n", *out, info.N, info.M, info.MaxDeg, info.Bytes)
}

func runInfo(args []string) {
	fs := flag.NewFlagSet("graphstore info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	info, err := store.ReadInfo(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: n=%d m=%d maxdeg=%d bytes=%d\n", fs.Arg(0), info.N, info.M, info.MaxDeg, info.Bytes)
}

func runVerify(args []string) {
	fs := flag.NewFlagSet("graphstore verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	g, info, err := store.Load(fs.Arg(0))
	if err != nil {
		fail(fmt.Errorf("%s: %w", fs.Arg(0), err))
	}
	mode := "copied"
	if info.ZeroCopy {
		mode = "zero-copy"
	}
	fmt.Printf("%s: ok n=%d m=%d maxdeg=%d bytes=%d (%s load)\n",
		fs.Arg(0), g.N(), g.M(), g.MaxDegree(), info.Bytes, mode)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphstore:", err)
	osExit(1)
}

// osExit is a seam so tests can intercept the exit-1 path.
var osExit = os.Exit
