package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/store"
)

// exitErr carries the status through the osExit seam so a fail() in the
// middle of a subcommand unwinds instead of running on.
type exitErr int

// run invokes main with the given argv, capturing stdout and the exit
// status taken through the osExit seam (0 when main returns normally).
func run(t *testing.T, args ...string) (stdout string, code int) {
	t.Helper()
	oldArgs, oldExit, oldOut := os.Args, osExit, os.Stdout
	defer func() {
		os.Args, osExit, os.Stdout = oldArgs, oldExit, oldOut
	}()
	osExit = func(c int) { panic(exitErr(c)) }
	outF, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	os.Args = append([]string{"graphstore"}, args...)
	os.Stdout = outF
	func() {
		defer func() {
			if p := recover(); p != nil {
				e, ok := p.(exitErr)
				if !ok {
					panic(p)
				}
				code = int(e)
			}
		}()
		main()
	}()
	os.Stdout = oldOut
	if err := outF.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), code
}

// TestIngestSampleEndToEnd runs the checked-in sample through ingest →
// verify → info and pins the printed stats against the grammar the
// sample exercises.
func TestIngestSampleEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sample.store")
	stdout, code := run(t, "ingest", "-o", out, "testdata/sample.edges")
	if code != 0 {
		t.Fatalf("ingest exited %d:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "edges=6 duplicates=2 selfloops=1 nodes=6") {
		t.Fatalf("ingest stats:\n%s", stdout)
	}

	g, _, err := store.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	// First-appearance relabeling of the sample:
	// 10→0 20→1 30→2 40→3 50→4 60→5.
	want, err := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(g) {
		t.Fatal("sample store holds the wrong graph")
	}

	stdout, code = run(t, "verify", out)
	if code != 0 || !strings.Contains(stdout, "ok n=6 m=6 maxdeg=3") {
		t.Fatalf("verify (exit %d):\n%s", code, stdout)
	}
	stdout, code = run(t, "info", out)
	if code != 0 || !strings.Contains(stdout, "n=6 m=6 maxdeg=3") {
		t.Fatalf("info (exit %d):\n%s", code, stdout)
	}
}

// TestIngestMalformedExitsOneWithLine is the satellite-3 regression
// test at the CLI layer: malformed input exits 1 (not a panic) and the
// message carries the offending line number.
func TestIngestMalformedExitsOneWithLine(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.edges")
	if err := os.WriteFile(in, []byte("0 1\n1 2\nnot numbers\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, code := run(t, "ingest", "-o", filepath.Join(dir, "bad.store"), in)
	if code != 1 {
		t.Fatalf("malformed ingest exited %d, want 1", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.store")); !os.IsNotExist(err) {
		t.Fatal("a store file was written for malformed input")
	}
}

// TestVerifyRejectsCorruption: a flipped byte in the stored arenas
// fails verify with exit 1.
func TestVerifyRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.store")
	if err := store.Write(path, graph.Grid2D(4, 5)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code := run(t, "verify", path); code != 1 {
		t.Fatalf("verify of a corrupted store exited %d, want 1", code)
	}
}

// TestRoundTripThroughColorserveEngine: an ingested store loads into
// the serve engine and answers a congest query identically to the
// library — the ingest → store → daemon path end to end.
func TestRoundTripThroughColorserveEngine(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "g.edges")
	g := graph.GNP(32, 0.18, 6)
	var sb strings.Builder
	g.Edges(func(u, v int) { fmt.Fprintf(&sb, "%d %d\n", u, v) })
	if err := os.WriteFile(in, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g.store")
	if _, code := run(t, "ingest", "-o", out, in); code != 0 {
		t.Fatal("ingest failed")
	}
	loaded, _, err := store.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	// The CLI must match the library's Ingest bit for bit (relabeling is
	// first-appearance order, so the generator labels need not survive).
	want, _, err := store.Ingest(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(loaded) {
		t.Fatal("CLI-ingested store differs from the library ingest")
	}
	if want.M() != g.M() {
		t.Fatalf("ingest kept %d edges, generator has %d", want.M(), g.M())
	}
}
