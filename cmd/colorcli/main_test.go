package main

import (
	"flag"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// runCLI invokes main with a fresh flag set and the given arguments.
// colorcli defines all its flags inside main, so resetting
// flag.CommandLine lets one test process drive several invocations.
func runCLI(t *testing.T, args ...string) {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	defer func() {
		os.Args, flag.CommandLine = oldArgs, oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("colorcli", flag.ExitOnError)
	os.Args = append([]string{"colorcli"}, args...)
	main()
}

// TestCLISmokeAllModels runs one small instance through every model the
// CLI exposes: a compile-and-run guard that keeps the binary on the
// go-test path. Failures inside the algorithms log.Fatal, aborting the
// test process.
func TestCLISmokeAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("cli smoke test skipped in -short mode")
	}
	runCLI(t, "-graph", "cycle", "-n", "24", "-model", "congest")
	runCLI(t, "-graph", "regular", "-n", "20", "-d", "4", "-model", "clique")
	runCLI(t, "-graph", "grid", "-n", "16", "-model", "mpc")
	// Sublinear memory needs a non-toy instance: at tiny n the S = Θ(√n)
	// budget is so small that the IO audit (correctly) rejects the run.
	runCLI(t, "-graph", "regular", "-n", "32", "-d", "4", "-model", "mpc", "-sublinear")
	runCLI(t, "-graph", "cycle", "-n", "32", "-model", "decomposed")
	runCLI(t, "-graph", "star", "-n", "12", "-model", "randomized")
	runCLI(t, "-graph", "caveman", "-n", "24", "-model", "greedy", "-lists", "random")
}

// TestCheckpointEveryRejectedForUnsupportedModels is the regression
// test for the silently-ignored flag: -checkpoint-every combined with a
// model that has no checkpoint implementation must abort with an error
// naming the models that do, instead of running without checkpoints.
// log.Fatalf exits the process, so each case re-execs the test binary.
func TestCheckpointEveryRejectedForUnsupportedModels(t *testing.T) {
	if os.Getenv("COLORCLI_CKREJECT_MODEL") != "" {
		runCLI(t, "-graph", "cycle", "-n", "16",
			"-model", os.Getenv("COLORCLI_CKREJECT_MODEL"), "-checkpoint-every", "2")
		return
	}
	for _, model := range []string{"clique", "mpc", "randomized", "greedy"} {
		cmd := exec.Command(os.Args[0], "-test.run", "TestCheckpointEveryRejectedForUnsupportedModels")
		cmd.Env = append(os.Environ(), "COLORCLI_CKREJECT_MODEL="+model)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("-model %s -checkpoint-every 2 succeeded; output:\n%s", model, out)
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Fatalf("-model %s: %v, want exit status 1", model, err)
		}
		if !strings.Contains(string(out), "checkpointing models: congest, decomposed") {
			t.Fatalf("-model %s error does not name the supporting models:\n%s", model, out)
		}
	}
	// The supported models still accept the flag.
	runCLI(t, "-graph", "cycle", "-n", "24", "-model", "congest",
		"-checkpoint-every", "1000000", "-checkpoint", t.TempDir()+"/ck.snap")
	runCLI(t, "-graph", "cycle", "-n", "24", "-model", "decomposed",
		"-checkpoint-every", "1000000", "-checkpoint", t.TempDir()+"/ck.snap")
}
