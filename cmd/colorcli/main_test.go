package main

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes main with a fresh flag set and the given arguments.
// colorcli defines all its flags inside main, so resetting
// flag.CommandLine lets one test process drive several invocations.
func runCLI(t *testing.T, args ...string) {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	defer func() {
		os.Args, flag.CommandLine = oldArgs, oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("colorcli", flag.ExitOnError)
	os.Args = append([]string{"colorcli"}, args...)
	main()
}

// TestCLISmokeAllModels runs one small instance through every model the
// CLI exposes: a compile-and-run guard that keeps the binary on the
// go-test path. Failures inside the algorithms log.Fatal, aborting the
// test process.
func TestCLISmokeAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("cli smoke test skipped in -short mode")
	}
	runCLI(t, "-graph", "cycle", "-n", "24", "-model", "congest")
	runCLI(t, "-graph", "regular", "-n", "20", "-d", "4", "-model", "clique")
	runCLI(t, "-graph", "grid", "-n", "16", "-model", "mpc")
	// Sublinear memory needs a non-toy instance: at tiny n the S = Θ(√n)
	// budget is so small that the IO audit (correctly) rejects the run.
	runCLI(t, "-graph", "regular", "-n", "32", "-d", "4", "-model", "mpc", "-sublinear")
	runCLI(t, "-graph", "cycle", "-n", "32", "-model", "decomposed")
	runCLI(t, "-graph", "star", "-n", "12", "-model", "randomized")
	runCLI(t, "-graph", "caveman", "-n", "24", "-model", "greedy", "-lists", "random")
}

// TestCheckpointEveryRejectedForUnsupportedModels is the regression
// test for the silently-ignored flag: -checkpoint-every combined with a
// model that has no checkpoint implementation must abort with an error
// naming the models that do, instead of running without checkpoints.
// log.Fatalf exits the process, so each case re-execs the test binary.
func TestCheckpointEveryRejectedForUnsupportedModels(t *testing.T) {
	if os.Getenv("COLORCLI_CKREJECT_MODEL") != "" {
		runCLI(t, "-graph", "cycle", "-n", "16",
			"-model", os.Getenv("COLORCLI_CKREJECT_MODEL"), "-checkpoint-every", "2")
		return
	}
	for _, model := range []string{"clique", "mpc", "randomized", "greedy"} {
		cmd := exec.Command(os.Args[0], "-test.run", "TestCheckpointEveryRejectedForUnsupportedModels")
		cmd.Env = append(os.Environ(), "COLORCLI_CKREJECT_MODEL="+model)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("-model %s -checkpoint-every 2 succeeded; output:\n%s", model, out)
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Fatalf("-model %s: %v, want exit status 1", model, err)
		}
		if !strings.Contains(string(out), "checkpointing models: congest, decomposed") {
			t.Fatalf("-model %s error does not name the supporting models:\n%s", model, out)
		}
	}
	// The supported models still accept the flag.
	runCLI(t, "-graph", "cycle", "-n", "24", "-model", "congest",
		"-checkpoint-every", "1000000", "-checkpoint", t.TempDir()+"/ck.snap")
	runCLI(t, "-graph", "cycle", "-n", "24", "-model", "decomposed",
		"-checkpoint-every", "1000000", "-checkpoint", t.TempDir()+"/ck.snap")
}

// rerunExpectingError re-execs the test binary to drive main with args
// that must log.Fatal, and returns the combined output. Exit status 1
// (log.Fatal) is required — a panic would exit 2 with a stack trace.
func rerunExpectingError(t *testing.T, test string, env string, args ...string) string {
	t.Helper()
	if os.Getenv(env) != "" {
		runCLI(t, strings.Split(os.Getenv(env), " ")...)
		return ""
	}
	cmd := exec.Command(os.Args[0], "-test.run", test)
	cmd.Env = append(os.Environ(), env+"="+strings.Join(args, " "))
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%v succeeded; output:\n%s", args, out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("%v: %v, want exit status 1 (a clean log.Fatal, not a panic); output:\n%s", args, err, out)
	}
	return string(out)
}

// TestGeneratorParamErrorsAreClean is the regression test for invalid
// generator parameters reaching the user as a raw panic: -graph cycle
// -n 2 (Cycle requires n >= 3) and -graph regular with n·d odd used to
// crash with a goroutine stack trace instead of a diagnostic.
func TestGeneratorParamErrorsAreClean(t *testing.T) {
	const env = "COLORCLI_BADGRAPH_ARGS"
	if os.Getenv(env) != "" {
		rerunExpectingError(t, "", env)
		return
	}
	cases := [][]string{
		{"-graph", "cycle", "-n", "2", "-model", "greedy"},
		{"-graph", "regular", "-n", "5", "-d", "3", "-model", "greedy"},
	}
	for _, args := range cases {
		out := rerunExpectingError(t, "TestGeneratorParamErrorsAreClean", env, args...)
		if !strings.Contains(out, "invalid -graph") {
			t.Fatalf("%v: error is not the clean diagnostic:\n%s", args, out)
		}
		if strings.Contains(out, "goroutine ") {
			t.Fatalf("%v: error still carries a stack trace:\n%s", args, out)
		}
	}
}

// TestCheckpointFlagMisuseRejected is the regression test for the two
// silent checkpoint no-ops: -checkpoint FILE without -checkpoint-every
// and a negative -checkpoint-every both used to run to completion
// without ever writing a checkpoint.
func TestCheckpointFlagMisuseRejected(t *testing.T) {
	const env = "COLORCLI_BADCK_ARGS"
	if os.Getenv(env) != "" {
		rerunExpectingError(t, "", env)
		return
	}
	out := rerunExpectingError(t, "TestCheckpointFlagMisuseRejected", env,
		"-graph", "cycle", "-n", "16", "-model", "congest", "-checkpoint", "ck.snap")
	if !strings.Contains(out, "without -checkpoint-every") {
		t.Fatalf("-checkpoint without -checkpoint-every: wrong diagnostic:\n%s", out)
	}
	out = rerunExpectingError(t, "TestCheckpointFlagMisuseRejected", env,
		"-graph", "cycle", "-n", "16", "-model", "congest", "-checkpoint-every", "-3")
	if !strings.Contains(out, "-checkpoint-every must be >= 0") {
		t.Fatalf("negative -checkpoint-every: wrong diagnostic:\n%s", out)
	}
}

// TestCheckpointBannerHonest is the regression test for the lying
// summary line: a run whose cut count never reached -checkpoint-every
// used to print "latest written to FILE" while writing nothing — and a
// stale same-named file from an earlier run made the lie look true at
// resume time.
func TestCheckpointBannerHonest(t *testing.T) {
	const env = "COLORCLI_CKBANNER_ARGS"
	if os.Getenv(env) != "" {
		runCLI(t, strings.Split(os.Getenv(env), " ")...)
		return
	}
	rerun := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(os.Args[0], "-test.run", "TestCheckpointBannerHonest")
		cmd.Env = append(os.Environ(), env+"="+strings.Join(args, " "))
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	ck := filepath.Join(t.TempDir(), "ck.snap")
	out := rerun("-graph", "cycle", "-n", "24", "-model", "congest",
		"-checkpoint-every", "1000000", "-checkpoint", ck)
	if strings.Contains(out, "written, latest to") {
		t.Fatalf("interval never reached, but the banner claims a write:\n%s", out)
	}
	if !strings.Contains(out, "checkpoints: none written") {
		t.Fatalf("interval never reached: expected the none-written notice:\n%s", out)
	}
	if _, err := os.Stat(ck); !os.IsNotExist(err) {
		t.Fatalf("interval never reached, but %s exists (stat err: %v)", ck, err)
	}

	out = rerun("-graph", "cycle", "-n", "24", "-model", "congest",
		"-checkpoint-every", "1", "-checkpoint", ck)
	if !strings.Contains(out, "cuts written, latest to") {
		t.Fatalf("every cut checkpointed: banner missing:\n%s", out)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("every cut checkpointed, but no file: %v", err)
	}
}
