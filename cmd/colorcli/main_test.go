package main

import (
	"flag"
	"os"
	"testing"
)

// runCLI invokes main with a fresh flag set and the given arguments.
// colorcli defines all its flags inside main, so resetting
// flag.CommandLine lets one test process drive several invocations.
func runCLI(t *testing.T, args ...string) {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	defer func() {
		os.Args, flag.CommandLine = oldArgs, oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("colorcli", flag.ExitOnError)
	os.Args = append([]string{"colorcli"}, args...)
	main()
}

// TestCLISmokeAllModels runs one small instance through every model the
// CLI exposes: a compile-and-run guard that keeps the binary on the
// go-test path. Failures inside the algorithms log.Fatal, aborting the
// test process.
func TestCLISmokeAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("cli smoke test skipped in -short mode")
	}
	runCLI(t, "-graph", "cycle", "-n", "24", "-model", "congest")
	runCLI(t, "-graph", "regular", "-n", "20", "-d", "4", "-model", "clique")
	runCLI(t, "-graph", "grid", "-n", "16", "-model", "mpc")
	// Sublinear memory needs a non-toy instance: at tiny n the S = Θ(√n)
	// budget is so small that the IO audit (correctly) rejects the run.
	runCLI(t, "-graph", "regular", "-n", "32", "-d", "4", "-model", "mpc", "-sublinear")
	runCLI(t, "-graph", "cycle", "-n", "32", "-model", "decomposed")
	runCLI(t, "-graph", "star", "-n", "12", "-model", "randomized")
	runCLI(t, "-graph", "caveman", "-n", "24", "-model", "greedy", "-lists", "random")
}
