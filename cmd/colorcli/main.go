// colorcli generates a graph, runs one of the paper's coloring
// algorithms on it, verifies the result, and prints the measured cost.
//
// Examples:
//
//	colorcli -graph cycle -n 64 -model congest
//	colorcli -graph regular -n 128 -d 4 -model clique
//	colorcli -graph grid -n 64 -model mpc -sublinear
//	colorcli -graph barbell -n 64 -model decomposed
//	colorcli -graph torus -n 4096 -model congest -checkpoint-every 8 -checkpoint run.snap
//	colorcli -resume run.snap
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	sb "smallbandwidth"
	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/netdecomp"
	"smallbandwidth/internal/store"
)

func main() {
	var (
		graphKind = flag.String("graph", "cycle", "cycle|path|grid|torus|star|clique|regular|gnp|barbell|caveman|hypercube")
		n         = flag.Int("n", 64, "number of nodes (interpreted per generator)")
		d         = flag.Int("d", 4, "degree for -graph regular")
		p         = flag.Float64("p", 0.1, "edge probability for -graph gnp")
		seed      = flag.Uint64("seed", 1, "generator seed")
		model     = flag.String("model", "congest", "congest|decomposed|clique|mpc|randomized|greedy")
		sublinear = flag.Bool("sublinear", false, "use sublinear memory in -model mpc")
		lists     = flag.String("lists", "deltaplus1", "deltaplus1|random")
		colors    = flag.Uint("colors", 0, "color-space size for -lists random (0 = 4·Δ)")
		ckEvery   = flag.Int("checkpoint-every", 0, "write a checkpoint after every N consistent cuts (congest) or color classes (decomposed); 0 disables")
		ckFile    = flag.String("checkpoint", "checkpoint.snap", "checkpoint file written by -checkpoint-every")
		resume    = flag.String("resume", "", "resume from a checkpoint file; all graph and model flags are ignored (the file records the instance and options)")
		workers   = flag.Int("workers", 0, "cap the engine's delivery/compute workers (0 = GOMAXPROCS); results are bit-identical at every setting")
	)
	flag.Parse()

	if *resume != "" {
		runResume(*resume)
		return
	}

	// -checkpoint-every only has an implementation for the two resumable
	// pipelines; anywhere else it used to be silently ignored, leaving
	// the user without the checkpoints they asked for. The same applies
	// to a negative interval and to -checkpoint named without an
	// interval: both used to run to completion without ever writing the
	// file the user asked for.
	if *ckEvery < 0 {
		log.Fatalf("-checkpoint-every must be >= 0, got %d (0 disables checkpointing)", *ckEvery)
	}
	if *ckEvery > 0 && *model != "congest" && *model != "decomposed" {
		log.Fatalf("-checkpoint-every is not supported by -model %s (checkpointing models: congest, decomposed)", *model)
	}
	if *ckEvery == 0 {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "checkpoint" {
				log.Fatalf("-checkpoint %s without -checkpoint-every N never writes a checkpoint; add -checkpoint-every", *ckFile)
			}
		})
	}

	// -workers bounds the simulator engine's parallelism; a negative or
	// absurd value is a mistake, not a request, and the models that never
	// reach the engine would otherwise silently ignore the flag.
	if *workers < 0 || *workers > congest.MaxWorkers {
		log.Fatalf("-workers must be in [0,%d], got %d (0 uses GOMAXPROCS)", congest.MaxWorkers, *workers)
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" && *model != "congest" && *model != "decomposed" {
			log.Fatalf("-workers is not supported by -model %s (engine-backed models: congest, decomposed)", *model)
		}
	})

	g := buildGraph(*graphKind, *n, *d, *p, *seed)
	var inst *sb.Instance
	switch *lists {
	case "deltaplus1":
		inst = sb.DeltaPlusOne(g)
	case "random":
		c := uint32(*colors)
		if c == 0 {
			c = uint32(4*g.MaxDegree() + 4)
		}
		var err error
		inst, err = sb.RandomLists(g, c, 1, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -lists %q", *lists)
	}

	fmt.Printf("graph=%s n=%d m=%d Δ=%d D=%d colorspace=%d\n",
		*graphKind, g.N(), g.M(), g.MaxDegree(), g.Diameter(), inst.C)

	switch *model {
	case "congest":
		var res *sb.CONGESTResult
		var err error
		if *ckEvery > 0 {
			res, err = runCongestCheckpointed(inst, *ckEvery, *ckFile, *workers)
		} else {
			res, err = sb.ColorCONGEST(inst, sb.CONGESTOptions{Workers: *workers})
		}
		fail(err)
		fmt.Printf("CONGEST (Thm 1.1): rounds=%d messages=%d maxMsgWords=%d iterations=%d\n",
			res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxMessageWords, res.Iterations)
	case "decomposed":
		var res *sb.DecompResult
		var err error
		if *ckEvery > 0 {
			res, err = runDecomposedCheckpointed(inst, *ckEvery, *ckFile, *workers)
		} else {
			res, err = sb.ColorDecomposed(inst, sb.CONGESTOptions{Workers: *workers})
		}
		fail(err)
		dc := res.Decomp
		fmt.Printf("Corollary 1.2: chargedRounds=%d α=%d β=%d κ=%d clusters=%d\n",
			res.ChargedRounds, dc.Colors, dc.Beta, dc.Congestion, len(dc.Clusters))
	case "clique":
		res, err := sb.ColorClique(inst)
		fail(err)
		fmt.Printf("CLIQUE (Thm 1.3): rounds=%d iterations=%d maxBatch=%d localFinishAt=%d\n",
			res.Stats.Rounds, res.Iterations, res.MaxBatch, res.LocalFinishUncolored)
	case "mpc":
		res, err := sb.ColorMPC(inst, sb.MPCOptions{Sublinear: *sublinear})
		fail(err)
		regime := "linear (Thm 1.4)"
		if *sublinear {
			regime = "sublinear (Thm 1.5)"
		}
		fmt.Printf("MPC %s: rounds=%d machines=%d S=%d memHW=%d ioHW=%d\n",
			regime, res.Rounds, res.Machines, res.S, res.HighWaterMemory, res.HighWaterIO)
	case "randomized":
		res, err := sb.ColorRandomizedBaseline(inst, *seed)
		fail(err)
		fmt.Printf("randomized [Joh99]: rounds=%d messages=%d\n", res.Rounds, res.Stats.Messages)
	case "greedy":
		colors := sb.Greedy(inst)
		fail(inst.VerifyColoring(colors))
		fmt.Println("sequential greedy: ok")
	default:
		log.Fatalf("unknown -model %q", *model)
	}
	fmt.Println("coloring verified ✓")
}

func buildGraph(kind string, n, d int, p float64, seed uint64) *sb.Graph {
	// The generators reject out-of-range parameters by panicking
	// (library callers pass computed sizes); from the command line the
	// parameters are user input, which must produce a diagnostic, not a
	// stack trace — e.g. -graph cycle -n 2, or -graph regular with n·d
	// odd.
	defer func() {
		if r := recover(); r != nil {
			log.Fatalf("invalid -graph %s parameters (n=%d d=%d): %v", kind, n, d, r)
		}
	}()
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	switch kind {
	case "cycle":
		return sb.Cycle(n)
	case "path":
		return sb.Path(n)
	case "grid":
		return sb.Grid2D(side, (n+side-1)/side)
	case "torus":
		if side < 3 {
			side = 3
		}
		return sb.Torus2D(side, side)
	case "star":
		return sb.Star(n)
	case "clique":
		return sb.Complete(n)
	case "regular":
		return sb.RandomRegular(n, d, seed)
	case "gnp":
		return sb.GNP(n, p, seed)
	case "barbell":
		return sb.Barbell(n/4, n/2)
	case "caveman":
		return sb.Caveman(max(n/6, 2), 6)
	case "hypercube":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		return sb.Hypercube(dim)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph kind %q\n", kind)
		os.Exit(2)
		return nil
	}
}

// runCongestCheckpointed runs Theorem 1.1 with a checkpointer attached,
// rewriting the checkpoint file after every N consistent cuts. Each file
// is self-contained: instance, options, and the latest cut of every
// component, so `colorcli -resume FILE` needs no other flags.
func runCongestCheckpointed(inst *sb.Instance, every int, file string, workers int) (*sb.CONGESTResult, error) {
	opts := sb.CONGESTOptions{Workers: workers}
	cuts, writes := 0, 0
	ck := &congest.Checkpointer{}
	ck.OnCut = func(*congest.DomainCut) {
		cuts++
		if cuts%every != 0 {
			return
		}
		raw := core.EncodeCheckpoint(&core.Checkpoint{Inst: inst, Opts: opts, Snap: ck.Latest()})
		if err := store.WriteFileAtomic(file, raw); err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		writes++
	}
	res, err := core.ListColorResumable(inst, opts, ck, nil)
	// Report only what actually hit disk: a run whose cut count never
	// reached the interval used to claim "latest written to FILE" while
	// writing nothing — and a stale same-named file from an earlier run
	// made the lie look true.
	if err == nil && writes > 0 {
		fmt.Printf("checkpoints: %d of %d cuts written, latest to %s\n", writes, cuts, file)
	} else if err == nil && cuts > 0 {
		fmt.Printf("checkpoints: none written (%d cuts observed, below -checkpoint-every %d)\n", cuts, every)
	}
	return res, err
}

// runDecomposedCheckpointed is the Corollary 1.2 counterpart: the
// pipeline checkpoints at class boundaries.
func runDecomposedCheckpointed(inst *sb.Instance, every int, file string, workers int) (*sb.DecompResult, error) {
	opts := sb.CONGESTOptions{Workers: workers}
	classes, writes := 0, 0
	onCk := func(cp *netdecomp.PipelineCheckpoint) {
		classes++
		if classes%every != 0 {
			return
		}
		raw := netdecomp.EncodeCheckpoint(&netdecomp.Checkpoint{Inst: inst, Opts: opts, State: cp})
		if err := store.WriteFileAtomic(file, raw); err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		writes++
	}
	res, err := netdecomp.ListColorDecomposedResumable(inst, opts, onCk, nil)
	if err == nil && writes > 0 {
		fmt.Printf("checkpoints: %d of %d class boundaries written, latest to %s\n", writes, classes, file)
	} else if err == nil && classes > 0 {
		fmt.Printf("checkpoints: none written (%d class boundaries observed, below -checkpoint-every %d)\n", classes, every)
	}
	return res, err
}

// runResume restores a run from a checkpoint file. The model is read
// from the file itself: the two formats carry distinct fingerprints, so
// decoding tries Theorem 1.1 first and the pipeline second.
func runResume(file string) {
	raw, err := os.ReadFile(file)
	fail(err)
	if cp, err := core.DecodeCheckpoint(raw); err == nil {
		res, err := core.ListColorFromCheckpoint(cp, nil)
		fail(err)
		fail(cp.Inst.VerifyColoring(res.Colors))
		fmt.Printf("resumed CONGEST (Thm 1.1): rounds=%d messages=%d maxMsgWords=%d iterations=%d\n",
			res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxMessageWords, res.Iterations)
	} else if cp, derr := netdecomp.DecodeCheckpoint(raw); derr == nil {
		res, err := netdecomp.ListColorDecomposedResumable(cp.Inst, cp.Opts, nil, cp.State)
		fail(err)
		fail(cp.Inst.VerifyColoring(res.Colors))
		fmt.Printf("resumed Corollary 1.2: chargedRounds=%d classes=%d messages=%d\n",
			res.ChargedRounds, res.Decomp.Colors, res.Messages)
	} else {
		log.Fatalf("%s: not a CONGEST checkpoint (%v) nor a pipeline checkpoint (%v)", file, err, derr)
	}
	fmt.Println("coloring verified ✓")
	os.Exit(0)
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
