// colorserve is a long-running coloring daemon: it loads one or more
// graph-store files at startup (zero-copy where the platform allows),
// keeps them resident, and serves coloring, decomposition, and stats
// requests concurrently over the line protocol documented in
// internal/serve.
//
// Examples:
//
//	colorserve -listen 127.0.0.1:7777 web=web.store road=road.store
//	colorserve -stdin g=graph.store < session.txt
//	echo "color g congest" | colorserve -stdin -trust g=graph.store
//
// Graphs are named on the command line as name=path pairs (positional
// or via repeated -store flags). -trust switches to the trusted load
// path (offset checks only, no arc-symmetry validation) for stores the
// daemon's operator produced; leave it off for files of unknown origin.
//
// In -listen mode the daemon serves until SIGINT/SIGTERM, then shuts
// down gracefully: in-flight requests finish and their responses are
// written before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/serve"
	"smallbandwidth/internal/store"
)

func main() {
	var stores stringList
	var (
		listen  = flag.String("listen", "", "TCP address to serve on (e.g. 127.0.0.1:7777)")
		stdin   = flag.Bool("stdin", false, "serve a single session on stdin/stdout and exit")
		workers = flag.Int("workers", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		engineW = flag.Int("engine-workers", 0, "per-request cap on the simulator engine's worker count (0 = engine default, no cap); results are bit-identical at every setting")
		trust   = flag.Bool("trust", false, "skip full CSR validation when loading stores (only for self-produced files)")
	)
	flag.Var(&stores, "store", "graph to load, as name=path (repeatable; positional args work too)")
	flag.Parse()
	stores = append(stores, flag.Args()...)

	if len(stores) == 0 {
		log.Fatal("no graphs: pass at least one name=path store")
	}
	if (*listen == "") == !*stdin {
		log.Fatal("pick exactly one of -listen ADDR or -stdin")
	}
	if *workers < 0 {
		log.Fatalf("-workers must be >= 0, got %d (0 uses GOMAXPROCS)", *workers)
	}
	if *engineW < 0 || *engineW > congest.MaxWorkers {
		log.Fatalf("-engine-workers must be in [0,%d], got %d (0 = engine default, no cap)", congest.MaxWorkers, *engineW)
	}

	srv := serve.New(serve.Options{Workers: *workers, EngineWorkers: *engineW})
	load := store.Load
	if *trust {
		load = store.LoadTrusted
	}
	for _, spec := range stores {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			log.Fatalf("bad -store %q: want name=path", spec)
		}
		g, info, err := load(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if err := srv.AddGraph(name, g); err != nil {
			log.Fatal(err)
		}
		mode := "copied"
		if info.ZeroCopy {
			mode = "zero-copy"
		}
		fmt.Fprintf(os.Stderr, "loaded %s: n=%d m=%d maxdeg=%d bytes=%d (%s)\n",
			name, info.N, info.M, info.MaxDeg, info.Bytes, mode)
	}

	if *stdin {
		if err := srv.HandleSession(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "colorserve listening on %s (graphs: %s)\n",
		ln.Addr(), strings.Join(srv.Names(), ","))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "colorserve: drained, bye")
}

// stringList collects repeated -store flags.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}
