package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/serve"
	"smallbandwidth/internal/store"
)

// runServe invokes main with a fresh flag set, a scripted stdin, and a
// captured stdout, mirroring the colorcli test harness.
func runServe(t *testing.T, input string, args ...string) string {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	oldIn, oldOut := os.Stdin, os.Stdout
	defer func() {
		os.Args, flag.CommandLine = oldArgs, oldFlags
		os.Stdin, os.Stdout = oldIn, oldOut
	}()
	flag.CommandLine = flag.NewFlagSet("colorserve", flag.ExitOnError)
	os.Args = append([]string{"colorserve"}, args...)

	dir := t.TempDir()
	in := filepath.Join(dir, "in")
	if err := os.WriteFile(in, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	inF, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	defer inF.Close()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin, os.Stdout = inF, outF
	main()
	os.Stdout = oldOut
	if err := outF.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(got)
}

// TestStdinSessionGolden is the end-to-end daemon test CI mirrors: a
// store file on disk, a scripted session on stdin, and responses pinned
// against direct library answers through serve.ColorsSummary.
func TestStdinSessionGolden(t *testing.T) {
	g := graph.Grid2D(5, 5)
	path := filepath.Join(t.TempDir(), "grid.store")
	if err := store.Write(path, g); err != nil {
		t.Fatal(err)
	}
	distinct, hash := serve.ColorsSummary(graph.DeltaPlusOneInstance(g).Greedy())

	session := strings.Join([]string{
		"ping",
		"graphs",
		"info grid",
		"color grid greedy",
		"color grid nosuch",
		"quit",
	}, "\n") + "\n"
	got := runServe(t, session, "-stdin", "grid="+path)
	want := strings.Join([]string{
		"ok pong",
		"ok graphs=grid",
		"ok graph=grid n=25 m=40 maxdeg=4 arcs=80",
		fmt.Sprintf("ok graph=grid model=greedy colors=%d hash=%08x", distinct, hash),
		`err unknown model "nosuch" (want congest|decomposed|clique|mpc|greedy)`,
		"ok bye",
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("session transcript:\n got %q\nwant %q", got, want)
	}
}

// TestSessionFixtureCurrent replays the checked-in CI session fixture
// (testdata/session.txt against the sample edge list) and demands the
// checked-in expected transcript — if an algorithm change shifts any
// answer, this fails here before CI's diff step does.
func TestSessionFixtureCurrent(t *testing.T) {
	f, err := os.Open("../graphstore/testdata/sample.edges")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, _, err := store.Ingest(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.store")
	if err := store.Write(path, g); err != nil {
		t.Fatal(err)
	}
	script, err := os.ReadFile("testdata/session.txt")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/session.expect")
	if err != nil {
		t.Fatal(err)
	}
	got := runServe(t, string(script), "-stdin", "sample="+path)
	if got != string(want) {
		t.Fatalf("session fixture is stale:\n got %q\nwant %q", got, want)
	}
}

// TestStdinTrustedLoad: -trust serves the same answers as the validated
// path on a well-formed store.
func TestStdinTrustedLoad(t *testing.T) {
	g := graph.GNP(30, 0.2, 4)
	path := filepath.Join(t.TempDir(), "g.store")
	if err := store.Write(path, g); err != nil {
		t.Fatal(err)
	}
	req := "color g congest\nquit\n"
	validated := runServe(t, req, "-stdin", "g="+path)
	trusted := runServe(t, req, "-stdin", "-trust", "-store", "g="+path)
	if validated != trusted {
		t.Fatalf("trusted load diverges:\n%q\n%q", validated, trusted)
	}
}
