// Command sbwlint runs the repo's invariant analyzers (see docs/LINT.md):
//
//	detmaprange  — no map iteration in the deterministic packages
//	detsource    — no math/rand, time.Now/Since/Until, os.Getenv there
//	stickydecode — decode paths never panic on hostile bytes
//	allocfree    — annotated hot paths contain no allocating constructs
//	atomicwrite  — durable writes only through store.WriteFileAtomic
//	sbwdirective — every //sbw: annotation is well-formed and justified
//
// Standalone (the CI gate):
//
//	go build ./cmd/sbwlint && ./sbwlint ./...
//
// Exit status 0 means zero findings; 1 means findings; 2 means the tool
// itself failed. sbwlint also speaks the `go vet -vettool` protocol
// (-V=full, -flags, per-package .cfg invocation), so
//
//	go vet -vettool=$(pwd)/sbwlint ./...
//
// works too — it re-loads the dependency closure per package, so the
// standalone form is the fast path.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"smallbandwidth/internal/lint"
)

const version = "sbwlint version v1-podc-bamberger-km20"

func main() {
	args := os.Args[1:]
	// `go vet` probes tools with -V=full (cache key) and -flags (flag
	// schema) before per-package runs.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println(version)
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}
	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		usage()
		return
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbwlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sbwlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func usage() {
	fmt.Println("usage: sbwlint [packages]   (defaults to ./...)")
	fmt.Println()
	for _, a := range lint.Suite() {
		fmt.Printf("  %-13s %s\n", a.Name, a.Doc)
	}
}

// vetConfig is the subset of the `go vet` per-package config file the
// tool needs; the go command writes one per package and invokes the
// vettool with its path.
type vetConfig struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbwlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sbwlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The suite exports no facts, but the go command requires the vetx
	// output file to exist after a successful run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil { //sbw:directwrite vet facts scratch file inside the go command's work directory
			fmt.Fprintln(os.Stderr, "sbwlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly || cfg.ImportPath == "" || strings.Contains(cfg.ImportPath, ".test") {
		return 0
	}
	findings, err := lint.Run(cfg.Dir, []string{cfg.ImportPath})
	if err != nil {
		// Synthesized test-variant packages ("p [p.test]") don't resolve
		// as go list patterns; the standalone run covers the real ones.
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
