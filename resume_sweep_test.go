package smallbandwidth

// The crash-at-every-round differential tier. A checkpointed run records
// a consistent cut at every commit barrier; this suite discards the live
// run at each cut in turn, resumes from the recorded snapshot in fresh
// state, and requires the finished run to be bit-identical to the
// uninterrupted one — Colors, Stats, per-iteration telemetry for the
// Theorem 1.1 CONGEST algorithm, and Colors/ChargedRounds/per-class
// accounting for the Corollary 1.2 pipeline. Resumes execute at one
// worker and several, so the tier also pins that snapshots are
// independent of the worker count on both sides of the crash.

import (
	"fmt"
	"reflect"
	"testing"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/engine"
	"smallbandwidth/internal/netdecomp"
)

// disconnectedGraph is a path plus a cycle in one graph: components run
// as separate engine domains, so its snapshots carry one cut per domain
// and the resume path must stitch several restored components together.
func disconnectedGraph(t *testing.T) *Graph {
	t.Helper()
	var edges [][2]int
	for v := 0; v < 6; v++ {
		edges = append(edges, [2]int{v, v + 1})
	}
	for v := 7; v < 12; v++ {
		edges = append(edges, [2]int{v, v + 1})
	}
	edges = append(edges, [2]int{12, 7})
	g, err := FromEdges(13, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// resumeSweepTable is the conformance table plus the disconnected union.
// Short mode keeps a curated subset covering a long path (many cuts), a
// dense random graph, and the multi-domain case.
func resumeSweepTable(t *testing.T) []conformanceCase {
	t.Helper()
	disc := conformanceCase{name: "disconnected", g: disconnectedGraph(t)}
	if testing.Short() {
		return []conformanceCase{
			{name: "path33", g: Path(33)},
			{name: "gnp28", g: GNP(28, 0.15, 7)},
			disc,
		}
	}
	return append(conformanceTable(), disc)
}

// resumeShardCounts are the worker counts every resume is replayed at.
func resumeShardCounts() []int {
	if testing.Short() {
		return []int{3}
	}
	return []int{1, 3}
}

// requireRunEq demands bitwise equality of everything a Theorem 1.1 run
// reports (potentials excluded: resumable runs reject TrackPotentials).
func requireRunEq(t *testing.T, label string, got, want *CONGESTResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Colors, want.Colors) {
		t.Fatalf("%s: colors diverged", label)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	if got.Iterations != want.Iterations || got.Done != want.Done {
		t.Fatalf("%s: iterations/done (%d,%v), want (%d,%v)",
			label, got.Iterations, got.Done, want.Iterations, want.Done)
	}
	if !reflect.DeepEqual(got.Colored, want.Colored) || !reflect.DeepEqual(got.AliveAt, want.AliveAt) {
		t.Fatalf("%s: per-iteration telemetry diverged", label)
	}
}

// requireDecompRunEq is the Corollary 1.2 counterpart: colors plus the
// full cost accounting must match bit for bit.
func requireDecompRunEq(t *testing.T, label string, got, want *DecompResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Colors, want.Colors) {
		t.Fatalf("%s: colors diverged", label)
	}
	if got.ChargedRounds != want.ChargedRounds {
		t.Fatalf("%s: ChargedRounds %d, want %d", label, got.ChargedRounds, want.ChargedRounds)
	}
	if !reflect.DeepEqual(got.ClassRounds, want.ClassRounds) || !reflect.DeepEqual(got.ClassStats, want.ClassStats) {
		t.Fatalf("%s: per-class accounting diverged", label)
	}
	if got.Messages != want.Messages || got.Words != want.Words {
		t.Fatalf("%s: traffic (%d,%d), want (%d,%d)",
			label, got.Messages, got.Words, want.Messages, want.Words)
	}
}

// TestResumeSweepCONGEST crashes a Theorem 1.1 run at every recorded
// round barrier and resumes from the snapshot, at one worker and
// several, demanding a bit-identical final report each time.
func TestResumeSweepCONGEST(t *testing.T) {
	for _, c := range resumeSweepTable(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inst := buildInstance(t, c)
			want, err := ColorCONGEST(inst)
			if err != nil {
				t.Fatal(err)
			}

			engine.SetForceShards(1)
			ck := &congest.Checkpointer{KeepAll: true}
			rec, err := core.ListColorResumable(inst, CONGESTOptions{}, ck, nil)
			engine.SetForceShards(0)
			if err != nil {
				t.Fatal(err)
			}
			requireRunEq(t, "recording checkpoints perturbed the run", rec, want)

			rounds := ck.CutRounds()
			if len(rounds) == 0 {
				t.Fatal("run recorded no cuts")
			}
			for _, shards := range resumeShardCounts() {
				for _, k := range rounds {
					engine.SetForceShards(shards)
					got, err := core.ListColorResumable(inst, CONGESTOptions{}, nil, ck.At(k))
					engine.SetForceShards(0)
					if err != nil {
						t.Fatalf("resume at round %d with %d workers: %v", k, shards, err)
					}
					requireRunEq(t, fmt.Sprintf("resume at round %d with %d workers", k, shards), got, want)
				}
			}
		})
	}
}

// TestResumeSweepDecomposed is the same sweep for the Corollary 1.2
// pipeline, which checkpoints at class boundaries.
func TestResumeSweepDecomposed(t *testing.T) {
	for _, c := range resumeSweepTable(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inst := buildInstance(t, c)
			want, err := ColorDecomposed(inst)
			if err != nil {
				t.Fatal(err)
			}

			var cps []*netdecomp.PipelineCheckpoint
			rec, err := netdecomp.ListColorDecomposedResumable(inst, CONGESTOptions{},
				func(cp *netdecomp.PipelineCheckpoint) { cps = append(cps, cp) }, nil)
			if err != nil {
				t.Fatal(err)
			}
			requireDecompRunEq(t, "recording checkpoints perturbed the run", rec, want)
			if len(cps) != want.Decomp.Colors {
				t.Fatalf("recorded %d checkpoints, want one per class (%d)", len(cps), want.Decomp.Colors)
			}

			for _, shards := range resumeShardCounts() {
				for _, cp := range cps {
					engine.SetForceShards(shards)
					got, err := netdecomp.ListColorDecomposedResumable(inst, CONGESTOptions{}, nil, cp)
					engine.SetForceShards(0)
					if err != nil {
						t.Fatalf("resume at class %d with %d workers: %v", cp.Class, shards, err)
					}
					requireDecompRunEq(t, fmt.Sprintf("resume at class %d with %d workers", cp.Class, shards), got, want)
				}
			}
		})
	}
}

// TestResumeSweepSnapshotsShardIndependent records the cut sequence at
// one worker and at several and demands the snapshots themselves — not
// just the finished runs — be identical, so a file written by a
// single-threaded recorder restores under any worker count.
func TestResumeSweepSnapshotsShardIndependent(t *testing.T) {
	inst := buildInstance(t, conformanceCase{name: "gnp28", g: GNP(28, 0.15, 7)})

	record := func(shards int) *congest.Checkpointer {
		engine.SetForceShards(shards)
		defer engine.SetForceShards(0)
		ck := &congest.Checkpointer{KeepAll: true}
		if _, err := core.ListColorResumable(inst, CONGESTOptions{}, ck, nil); err != nil {
			t.Fatal(err)
		}
		return ck
	}
	one, many := record(1), record(4)
	if !reflect.DeepEqual(one.CutRounds(), many.CutRounds()) {
		t.Fatalf("cut rounds differ: 1 worker %v, 4 workers %v", one.CutRounds(), many.CutRounds())
	}
	for _, k := range one.CutRounds() {
		if !reflect.DeepEqual(one.At(k), many.At(k)) {
			t.Fatalf("snapshot at round %d differs between 1 and 4 workers", k)
		}
	}
}
