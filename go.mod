module smallbandwidth

go 1.21
