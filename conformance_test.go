package smallbandwidth

// Cross-model conformance suite: every theorem's algorithm runs on the
// same seeded instances and must (a) return a proper coloring from the
// lists, and (b) respect its theorem's resource bounds — CONGEST the
// Theorem 1.1 round shape and the bandwidth cap, the decomposition
// pipeline a diameter-independent polylog budget (Corollary 1.2), the
// clique a budget far below CONGEST's diameter term (Theorem 1.3), and
// MPC its per-machine memory and IO caps (Theorems 1.4/1.5). All four
// simulators now share the sharded round engine, so this suite is the
// behavioral lockdown for the shared substrate: a regression in the
// engine's delivery order or accounting surfaces here for every model
// at once.

import (
	"math"
	"testing"
)

// conformanceCase is one seeded instance of the differential table.
type conformanceCase struct {
	name string
	g    *Graph
	// lists overrides the default (Δ+1)-instance when set.
	lists func(g *Graph) (*Instance, error)
}

func conformanceTable() []conformanceCase {
	return []conformanceCase{
		{name: "path33", g: Path(33)},
		{name: "star17", g: Star(16)},
		{name: "regular24-4", g: RandomRegular(24, 4, 11)},
		{name: "gnp28", g: GNP(28, 0.15, 7)},
		{name: "clique12", g: Complete(12)},
		{name: "regular20-lists", g: RandomRegular(20, 4, 3), lists: func(g *Graph) (*Instance, error) {
			return RandomLists(g, 64, 2, 5)
		}},
	}
}

func log2ceil(x int) float64 {
	if x < 2 {
		return 1
	}
	return math.Ceil(math.Log2(float64(x)))
}

func buildInstance(t *testing.T, c conformanceCase) *Instance {
	t.Helper()
	if c.lists != nil {
		inst, err := c.lists(c.g)
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	return DeltaPlusOne(c.g)
}

// TestConformanceAcrossModels runs ColorCONGEST, ColorDecomposed,
// ColorClique, and ColorMPC (both memory regimes) on every table
// instance and checks colorings and resource bounds.
func TestConformanceAcrossModels(t *testing.T) {
	for _, c := range conformanceTable() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inst := buildInstance(t, c)
			n := c.g.N()
			d := c.g.Diameter()
			if d < 0 {
				// Disconnected: components run in parallel, each bounded by
				// its own diameter < n.
				d = n
			}
			delta := c.g.MaxDegree()
			logC := math.Max(log2ceil(int(inst.C)), 1)
			logN := log2ceil(n)
			logD := math.Max(log2ceil(delta), 1)
			loglogC := math.Max(log2ceil(int(logC)), 1)

			verify := func(model string, colors []uint32) {
				t.Helper()
				if err := inst.VerifyColoring(colors); err != nil {
					t.Fatalf("%s: %v", model, err)
				}
			}

			// Theorem 1.1: O(D·logn·logC·(logΔ+loglogC)) rounds, O(logn)-bit
			// messages.
			congest, err := ColorCONGEST(inst)
			if err != nil {
				t.Fatal(err)
			}
			verify("congest", congest.Colors)
			congestBound := 60 * float64(d+1) * logN * logC * (logD + loglogC)
			if float64(congest.Stats.Rounds) > congestBound {
				t.Errorf("congest rounds %d exceed Theorem 1.1 shape %.0f", congest.Stats.Rounds, congestBound)
			}
			if congest.Stats.MaxMessageWords > 4 {
				t.Errorf("congest message of %d words breaks the bandwidth cap", congest.Stats.MaxMessageWords)
			}

			// Corollary 1.2: polylog rounds, independent of the diameter.
			decomp, err := ColorDecomposed(inst)
			if err != nil {
				t.Fatal(err)
			}
			verify("decomposed", decomp.Colors)
			decompBound := 600 * math.Pow(logN, 4) * logC * (logD + loglogC)
			if float64(decomp.ChargedRounds) > decompBound {
				t.Errorf("decomposed rounds %d exceed the polylog budget %.0f (D=%d must not matter)",
					decomp.ChargedRounds, decompBound, d)
			}

			// Theorem 1.3: O(loglogΔ·logC) rounds per iteration with O(log n)
			// iterations and an O(1)-round local finish — far below the
			// CONGEST diameter term.
			clq, err := ColorClique(inst)
			if err != nil {
				t.Fatal(err)
			}
			verify("clique", clq.Colors)
			cliqueBound := 40 * (logN + 1) * logC * (log2ceil(int(logD)) + loglogC + 4)
			if float64(clq.Stats.Rounds) > cliqueBound {
				t.Errorf("clique rounds %d exceed Theorem 1.3 shape %.0f", clq.Stats.Rounds, cliqueBound)
			}
			if clq.Stats.MaxMessageWords > 4 {
				t.Errorf("clique message of %d words breaks the bandwidth cap", clq.Stats.MaxMessageWords)
			}

			// Theorems 1.4/1.5: memory and per-round IO never exceed S.
			for _, sub := range []bool{false, true} {
				name := "mpc-linear"
				if sub {
					name = "mpc-sublinear"
				}
				res, err := ColorMPC(inst, MPCOptions{Sublinear: sub})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				verify(name, res.Colors)
				if res.HighWaterMemory > res.S {
					t.Errorf("%s: memory high-water %d > S = %d", name, res.HighWaterMemory, res.S)
				}
				if res.HighWaterIO > res.S {
					t.Errorf("%s: IO high-water %d > S = %d", name, res.HighWaterIO, res.S)
				}
				if sub && n >= 24 && res.S >= 8*n {
					t.Errorf("%s: S = %d is not sublinear in n = %d", name, res.S, n)
				}
			}

			// Default instances are (Δ+1)-instances: colors stay below Δ+1.
			if c.lists == nil {
				for _, algo := range [][]uint32{congest.Colors, decomp.Colors, clq.Colors} {
					for v, col := range algo {
						if int(col) > c.g.Degree(v) {
							t.Fatalf("node %d color %d outside its (deg+1)-list", v, col)
						}
					}
				}
			}
		})
	}
}

// TestConformanceAgainstGreedyOracle cross-checks the number of distinct
// colors each model uses against the sequential greedy oracle: no
// distributed run may need a larger color space than the instance
// provides, and all four must agree the instance is solvable.
func TestConformanceAgainstGreedyOracle(t *testing.T) {
	for _, c := range conformanceTable() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inst := buildInstance(t, c)
			greedy := Greedy(inst)
			if err := inst.VerifyColoring(greedy); err != nil {
				t.Fatalf("greedy oracle failed: %v", err)
			}
			if _, err := ColorCONGEST(inst); err != nil {
				t.Errorf("congest failed on a greedy-solvable instance: %v", err)
			}
			if _, err := ColorClique(inst); err != nil {
				t.Errorf("clique failed on a greedy-solvable instance: %v", err)
			}
			if _, err := ColorMPC(inst); err != nil {
				t.Errorf("mpc failed on a greedy-solvable instance: %v", err)
			}
		})
	}
}
