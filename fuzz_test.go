package smallbandwidth

import (
	"testing"
)

// FuzzColorCONGEST feeds small arbitrary instances through the
// Theorem 1.1 pipeline: any graph a fuzz input can describe must either
// color properly (the (Δ+1)-instance is always solvable) or fail with a
// clean error — never panic, hang, or return an improper coloring. The
// node programs, the shared round engine's barrier and sharded delivery,
// and the verification layer are all on the path.
func FuzzColorCONGEST(f *testing.F) {
	f.Add(uint8(6), []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0})
	f.Add(uint8(4), []byte{0, 1, 2, 3})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(9), []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8})
	f.Fuzz(func(t *testing.T, n uint8, edges []byte) {
		nn := int(n % 17) // small instances: the engine still runs one goroutine per node
		b := NewGraphBuilder(nn)
		for i := 0; i+1 < len(edges) && i < 64; i += 2 {
			u, v := int(edges[i])%max(nn, 1), int(edges[i+1])%max(nn, 1)
			if u != v && nn > 0 && !b.HasEdge(u, v) {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		inst := DeltaPlusOne(g)
		res, err := ColorCONGEST(inst)
		if err != nil {
			// A clean model-level error is acceptable for a fuzzer-built
			// instance; a bad coloring or panic is not.
			t.Skipf("clean error: %v", err)
		}
		if err := inst.VerifyColoring(res.Colors); err != nil {
			t.Fatalf("improper coloring on fuzzed graph (n=%d, m=%d): %v", g.N(), g.M(), err)
		}
		if res.Stats.MaxMessageWords > 4 {
			t.Fatalf("bandwidth cap broken: %d words", res.Stats.MaxMessageWords)
		}
	})
}

// FuzzDecomp feeds small arbitrary graphs through the full Corollary 1.2
// pipeline: the network decomposition must build and satisfy the
// Definition 3.1 contract (Validate), and ColorDecomposed must either
// color the always-solvable (Δ+1)-instance properly or fail with a clean
// error — never panic, hang, or mis-color. The frontier-driven builder,
// the batched per-class engine runs, and the charged-round accounting
// are all on the path.
func FuzzDecomp(f *testing.F) {
	f.Add(uint8(6), []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0})
	f.Add(uint8(8), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(9), []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8})
	f.Add(uint8(12), []byte{0, 1, 1, 2, 2, 3, 4, 5, 5, 6, 7, 8, 8, 9, 9, 7})
	f.Fuzz(func(t *testing.T, n uint8, edges []byte) {
		nn := int(n % 17)
		b := NewGraphBuilder(nn)
		for i := 0; i+1 < len(edges) && i < 64; i += 2 {
			u, v := int(edges[i])%max(nn, 1), int(edges[i+1])%max(nn, 1)
			if u != v && nn > 0 && !b.HasEdge(u, v) {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		d, err := BuildDecomposition(g)
		if err != nil {
			// The construction's guarantees hold for every graph: an error
			// here is a builder bug, not a bad input.
			t.Fatalf("decomposition failed on fuzzed graph (n=%d, m=%d): %v", g.N(), g.M(), err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("invalid decomposition on fuzzed graph (n=%d, m=%d): %v", g.N(), g.M(), err)
		}
		inst := DeltaPlusOne(g)
		res, err := ColorDecomposed(inst)
		if err != nil {
			t.Skipf("clean error: %v", err)
		}
		if err := inst.VerifyColoring(res.Colors); err != nil {
			t.Fatalf("improper decomposed coloring on fuzzed graph (n=%d, m=%d): %v", g.N(), g.M(), err)
		}
		kappa := max(res.Decomp.Congestion, 1)
		want := res.Decomp.ChargedRound + max(res.Decomp.Colors-1, 0)
		for _, cr := range res.ClassRounds {
			want += cr * kappa
		}
		if res.ChargedRounds != want {
			t.Fatalf("charged-round identity broken: %d != %d", res.ChargedRounds, want)
		}
	})
}
