package smallbandwidth

import (
	"testing"
)

// FuzzColorCONGEST feeds small arbitrary instances through the
// Theorem 1.1 pipeline: any graph a fuzz input can describe must either
// color properly (the (Δ+1)-instance is always solvable) or fail with a
// clean error — never panic, hang, or return an improper coloring. The
// node programs, the shared round engine's barrier and sharded delivery,
// and the verification layer are all on the path.
func FuzzColorCONGEST(f *testing.F) {
	f.Add(uint8(6), []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0})
	f.Add(uint8(4), []byte{0, 1, 2, 3})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(9), []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8})
	f.Fuzz(func(t *testing.T, n uint8, edges []byte) {
		nn := int(n % 17) // small instances: the engine still runs one goroutine per node
		b := NewGraphBuilder(nn)
		for i := 0; i+1 < len(edges) && i < 64; i += 2 {
			u, v := int(edges[i])%max(nn, 1), int(edges[i+1])%max(nn, 1)
			if u != v && nn > 0 && !b.HasEdge(u, v) {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		inst := DeltaPlusOne(g)
		res, err := ColorCONGEST(inst)
		if err != nil {
			// A clean model-level error is acceptable for a fuzzer-built
			// instance; a bad coloring or panic is not.
			t.Skipf("clean error: %v", err)
		}
		if err := inst.VerifyColoring(res.Colors); err != nil {
			t.Fatalf("improper coloring on fuzzed graph (n=%d, m=%d): %v", g.N(), g.M(), err)
		}
		if res.Stats.MaxMessageWords > 4 {
			t.Fatalf("bandwidth cap broken: %d words", res.Stats.MaxMessageWords)
		}
	})
}
